package scout

import (
	"fmt"
	"sync"
	"time"

	"scout/internal/collect"
	"scout/internal/compile"
	"scout/internal/equiv"
	"scout/internal/fabric"
	"scout/internal/localize"
	"scout/internal/object"
	"scout/internal/probe"
	"scout/internal/risk"
	"scout/internal/rule"
	"scout/internal/store"
)

// sessionCheckerNodeBudget bounds how many BDD nodes a session worker
// checker may accumulate before the session intervenes (the default for
// AnalyzerOptions.SessionNodeBudget). Without a budget a session
// watching a churning fabric would grow without bound. The budget
// applies to each checker's private delta only (equiv.Checker.DeltaSize):
// the shared frozen base is deployment-scoped, immutable, and not the
// checker's to shed. An over-budget checker is compacted first — a delta
// GC around its live memo roots that keeps the warm encodings and memo
// state — and Reset (re-fork, delta discarded) only when live state
// alone still exceeds the budget.
const sessionCheckerNodeBudget = 4 << 20

// defaultSessionMissingRuleCap is the per-switch cached-rule bound used
// when AnalyzerOptions.SessionMissingRuleCap is zero.
const defaultSessionMissingRuleCap = 4096

// Session is a persistent analysis engine over one fabric — the
// continuous-verification mode of §III-C, where TCAM state is collected
// periodically and re-checked after every change. Unlike the one-shot
// Analyzer, a Session keeps per-switch check state between runs: the
// fingerprints of each switch's logical and TCAM rules, the cached
// equivalence report, and the worker checkers' memoized BDD encodings.
// A re-analysis therefore re-checks only the switches whose rules
// actually changed and replays cached reports for the rest, while
// producing a report byte-identical to a cold full Analyze at any worker
// count (the fold stages are unchanged and order-deterministic).
//
// Use a Session when the same fabric is analyzed repeatedly (watch loops,
// collectors feeding epochs); use Analyzer for one-off analyses. Rule
// state handed to a Session (deployments, epoch TCAM snapshots) must not
// be mutated afterwards — the session compares against it by fingerprint.
//
// A Session serializes its runs internally and is safe for concurrent
// use, though runs themselves parallelize per the configured Workers.
type Session struct {
	mu sync.Mutex
	a  *Analyzer
	f  *fabric.Fabric

	// base is the shared frozen encoding base every worker checker
	// forks: the deployment's distinct rule matches encoded once, plus
	// the frozen whole-switch semantics roots of its most duplicated
	// rule lists. It persists across runs keyed by the deployment
	// fingerprint (baseFP) — TCAM drift never invalidates it, only a
	// changed deployment (recompile) does — so warm runs reuse both
	// caches across runs, not just within one. baseDeployment is a
	// pointer-identity fast path past the hashing.
	base           *equiv.Base
	baseFP         uint64
	baseDeployment *compile.Deployment

	// checkers are the persistent per-worker BDD checkers (forks of
	// base); entry k is owned by worker k of the current run only, so
	// memoized match encodings amortize across every run of the session.
	checkers []*equiv.Checker

	// cache holds the newest check outcome per switch.
	cache map[object.ID]*switchCheckState

	// probeCache holds the newest probe-round outcome per switch
	// (probe-mode sessions only). Entries reuse switchCheckState: the
	// report is a pure function of the switch's logical rules and live
	// TCAM content, so the same fingerprint pair keys a valid replay.
	probeCache map[object.ID]*switchCheckState

	// lastDeployment keys the pristine controller-model cache: compiled
	// deployments are immutable, so pointer identity means the model (and
	// every logical rule set) is unchanged.
	lastDeployment *compile.Deployment
	ctrlPristine   *risk.Model

	// lastEpoch is the epoch of the immediately preceding successful
	// AnalyzeEpoch run, nil after any other (or failed) run. It gates the
	// epoch-diff fast path: a switch unchanged between lastEpoch and the
	// next epoch can skip even fingerprint hashing.
	lastEpoch *collect.Epoch

	// loadedVerdicts records which warm-store verdict files have already
	// seeded this session's caches, so each (deployment fingerprint,
	// mode) pair is read at most once per session — later runs of the
	// same deployment trust the in-memory cache, which is a superset.
	loadedVerdicts map[verdictLoadKey]struct{}

	// probeStoreDep/probeStoreFP cache the deployment fingerprint probe
	// rounds key their warm-store files by (probe mode has no shared base
	// and therefore no baseFP to reuse); pointer identity skips the hash.
	probeStoreDep *compile.Deployment
	probeStoreFP  uint64

	stats SessionStats
}

// verdictLoadKey identifies one warm-store verdict file: the deployment
// fingerprint plus which per-switch cache (check vs probe) it feeds.
type verdictLoadKey struct {
	fp    uint64
	probe bool
}

// switchCheckState is one switch's cached check outcome: the report and
// the fingerprints of the exact rule lists it was computed from.
type switchCheckState struct {
	// dep is the deployment the logical fingerprint was computed under;
	// pointer equality lets an unchanged deployment skip re-hashing.
	dep       *compile.Deployment
	logicalFP uint64
	tcamFP    uint64
	report    *equiv.Report
}

// SessionStats counts a session's cache behaviour across runs, the
// observability hook for incremental re-verification (and the assertion
// surface for its tests).
type SessionStats struct {
	// Runs counts completed analyses.
	Runs int
	// Checked counts switches whose equivalence was re-checked (cache
	// misses: changed rules, invalidations, or first sight). Of these,
	// DedupReplays got their fresh verdict from a group representative's
	// single check rather than a check of their own.
	Checked int
	// Replayed counts switches whose cached report was replayed without
	// re-checking.
	Replayed int
	// CheckerCompactions counts delta GCs on over-budget worker
	// checkers: live memo roots kept (CompactRetained sums the delta
	// nodes they retained), dead intermediates shed (CompactDropped).
	CheckerCompactions int
	CompactRetained    int
	CompactDropped     int
	// CheckerResets counts worker checkers rebuilt because even their
	// compacted (all-live) delta exceeded the node budget.
	CheckerResets int
	// OverCap counts fresh reports too large to cache under
	// SessionMissingRuleCap; their switches re-check on the next run.
	OverCap int
	// BaseRebuilds counts shared-base builds (the first build included):
	// one per distinct deployment fingerprint the session has analyzed.
	// A rebuild refreshes the frozen semantics cache along with the
	// match memo — both live in the base and share its lifecycle.
	BaseRebuilds int
	// BaseLoads counts shared bases restored from the warm store instead
	// of built: a warm restart of a clean fabric shows BaseLoads 1,
	// BaseRebuilds 0, and zero encode or fold misses.
	BaseLoads int
	// BaseSemGrafts and BaseSemFolds split each base build's whole-switch
	// semantics work: roots grafted from the shared BaseRegistry (another
	// deployment's base already froze a canonically equal list) versus
	// folded from scratch. Both zero when bases load from the warm store.
	BaseSemGrafts int
	BaseSemFolds  int
	// BaseNodes and DeltaNodes are gauges refreshed after every run: the
	// frozen shared base's node count and the sum of the worker
	// checkers' private deltas. BaseSemantics is the number of
	// whole-switch semantics roots frozen in the current base.
	BaseNodes     int
	DeltaNodes    int
	BaseSemantics int
	// EncodeHits and EncodeMisses accumulate across runs: match
	// encodings resolved from a memo (shared base or checker-local)
	// versus encoded from scratch into a worker's delta.
	EncodeHits   int
	EncodeMisses int
	// FoldHits and FoldMisses accumulate across runs: whole-list
	// semantics folds resolved from a memo (frozen base root or
	// checker-local) versus folded from scratch into a worker's delta.
	FoldHits   int
	FoldMisses int
	// DedupGroups and DedupReplays accumulate the whole-switch check
	// dedup across runs: groups of dirty switches sharing both rule-list
	// fingerprints, and the member switches whose verdict replayed from
	// their group's single check.
	DedupGroups  int
	DedupReplays int
	// Probe-mode counters (zero in TCAM-observation sessions).
	// ProbeSwitchesReplayed counts switches whose cached probe verdict
	// replayed because their TCAM fingerprint was unchanged — zero
	// Classify calls; ProbeSwitchesClassified counts switches whose
	// probes were actually classified. ProbePacketsBatched accumulates
	// probe packets resolved through rule-major batch passes over
	// switch TCAMs (see probe.Stats.BatchedPackets).
	ProbeSwitchesReplayed   int
	ProbeSwitchesClassified int
	ProbePacketsBatched     int
	// EventBatches counts ApplyEvents runs that refreshed against a
	// prior epoch (partial collections); EventSwitchesRead the switches
	// those runs re-read from the fabric, EventSwitchesAliased the
	// switches carried forward from the previous epoch without a read.
	// Together they pin the streaming path's collection cost: an event
	// batch touches only the switches its events name.
	EventBatches         int
	EventSwitchesRead    int
	EventSwitchesAliased int
	// Localization-engine counters, accumulated from each run's
	// Report.LocalizeStats. PlanCompiles counts CSR/bitset plan builds
	// from a pristine risk model; PlanReuses counts localizations served
	// by a cached plan — a warm session on an unchanged deployment shows
	// zero compiles after its first inconsistent run, because every
	// overlay run composes against the model's cached plan. LazyEvals
	// counts lazy-greedy heap re-evaluations and LazyPicks the greedy
	// picks they produced; their ratio versus FullScanEvals (the
	// coverage evaluations an eager greedy would have done) is the
	// CELF-style work saving.
	PlanCompiles  int
	PlanReuses    int
	LazyEvals     int
	FullScanEvals int
	LazyPicks     int
}

// addLocalizeStats folds one run's localization delta into the session
// counters (no-op for consistent runs, which localize nothing).
func (st *SessionStats) addLocalizeStats(d *localize.EngineStats) {
	if d == nil {
		return
	}
	st.PlanCompiles += int(d.PlanCompiles)
	st.PlanReuses += int(d.PlanReuses)
	st.LazyEvals += int(d.LazyEvals)
	st.FullScanEvals += int(d.FullScanEvals)
	st.LazyPicks += int(d.LazyPicks)
}

// NewSession creates a persistent analysis session over the fabric. The
// options are the Analyzer's. With UseProbes the session runs the probe
// observation source incrementally: each round fingerprints every
// switch's live TCAM, replays the cached probe verdict for switches
// whose fingerprint is unchanged (zero Classify calls), and classifies
// only the dirty ones' probe batches. Probe-mode sessions are driven by
// Analyze only — the epoch/event/raw-state entry points consume
// collected TCAM snapshots, which probe mode by definition does not use.
func NewSession(f *fabric.Fabric, opts ...AnalyzerOptions) (*Session, error) {
	a := NewAnalyzer(opts...)
	// Sessions replay cached check reports across runs, so their analyzer
	// also caches the annotated switch models those reports localize on —
	// a warm run re-localizes every still-broken switch through the
	// model's cached plan, compiling nothing.
	a.swModels = make(map[object.ID]*switchModelEntry)
	return &Session{
		a:              a,
		f:              f,
		cache:          make(map[object.ID]*switchCheckState),
		probeCache:     make(map[object.ID]*switchCheckState),
		loadedVerdicts: make(map[verdictLoadKey]struct{}),
	}, nil
}

// Analyze collects the fabric's current state and analyzes it,
// re-checking only switches whose logical or TCAM rules changed since the
// session's previous run. In probe mode the same replay applies to probe
// classification: clean switches replay their cached verdicts and only
// dirty switches' probe batches touch a dataplane.
func (s *Session) Analyze() (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.f.Deployment()
	if d == nil {
		return nil, fmt.Errorf("scout: fabric has never been deployed")
	}
	if s.a.opts.UseProbes {
		return s.analyzeProbesLocked(d)
	}
	return s.analyzeLocked(State{
		Deployment: d,
		TCAM:       s.f.CollectAll(),
		Changes:    s.f.ChangeLog(),
		Faults:     s.f.FaultLog(),
		Now:        s.f.Now(),
	}, nil)
}

// errProbeSession guards the TCAM-snapshot entry points in probe mode.
func (s *Session) errProbeSession(entry string) error {
	return fmt.Errorf("scout: %s consumes collected TCAM snapshots; probe-mode sessions are driven by Analyze", entry)
}

// analyzeProbesLocked is the probe-mode incremental round: fingerprint
// every switch's live TCAM (O(rules) hashing, fanned over the worker
// pool), replay cached verdicts for fingerprint-clean switches, and
// classify only the dirty switches' probe batches (O(rules × probes)
// work that the replay path skips entirely). The report is byte-identical
// to a cold Analyzer probe run at any worker count: replayed reports are
// pure functions of the switch's logical rules and TCAM content, and the
// fold stages are unchanged.
func (s *Session) analyzeProbesLocked(d *compile.Deployment) (*Report, error) {
	start := time.Now()
	ctrlModel := s.controllerModelLocked(d)
	s.ensureProbeStoreLocked(d)
	prober := s.a.proberFor(d)
	before := prober.Stats()
	switches := sortSwitches(s.f.Topology().Switches())

	// Fingerprint pass: hash every switch's live TCAM rules in parallel.
	tcamFPs := make([]uint64, len(switches))
	collectErrs := make([]error, len(switches))
	s.a.forEach(len(switches), func(i int) {
		rules, err := s.f.CollectTCAM(switches[i])
		if err != nil {
			collectErrs[i] = fmt.Errorf("scout: probe fingerprint switch %d: %w", switches[i], err)
			return
		}
		tcamFPs[i] = equiv.Fingerprint(rules)
	})
	for _, err := range collectErrs {
		if err != nil {
			return nil, err
		}
	}

	// Partition into replays and probe rounds, mirroring the equivalence
	// path's fingerprint partition.
	checkReps := make([]*equiv.Report, len(switches))
	logFPs := make([]uint64, len(switches))
	var dirty []object.ID
	var dirtyIdx []int
	for i, sw := range switches {
		ent := s.probeCache[sw]
		if ent != nil && ent.dep == d {
			logFPs[i] = ent.logicalFP
		} else {
			logFPs[i] = equiv.Fingerprint(d.RulesFor(sw))
		}
		if ent == nil || logFPs[i] != ent.logicalFP || tcamFPs[i] != ent.tcamFP {
			dirty = append(dirty, sw)
			dirtyIdx = append(dirtyIdx, i)
			continue
		}
		ent.dep = d // refresh identity for the next run's shortcut
		checkReps[i] = ent.report
	}

	if len(dirty) > 0 {
		check := func(_ *equiv.Checker, sw object.ID) (*equiv.Report, error) {
			return s.a.checkSwitch(s.f, d, nil, prober, sw)
		}
		fresh, err := s.a.checkAllWith(dirty, func(int) *equiv.Checker { return nil }, check)
		if err != nil {
			return nil, err
		}
		capRules := s.missingRuleCap()
		for j, i := range dirtyIdx {
			checkReps[i] = fresh[j]
			if capRules > 0 && len(fresh[j].MissingRules) > capRules {
				delete(s.probeCache, switches[i])
				s.stats.OverCap++
				continue
			}
			s.probeCache[switches[i]] = &switchCheckState{
				dep:       d,
				logicalFP: logFPs[i],
				tcamFP:    tcamFPs[i],
				report:    fresh[j],
			}
		}
	}

	rep := s.a.assemble(ctrlModel, d, s.f.ChangeLog(), s.f.FaultLog(), s.f.Now(), switches, checkReps)
	rep.Elapsed = time.Since(start)
	after := prober.Stats()
	s.stats.Runs++
	s.stats.addLocalizeStats(rep.LocalizeStats)
	s.stats.ProbeSwitchesClassified += len(dirty)
	s.stats.ProbeSwitchesReplayed += len(switches) - len(dirty)
	s.stats.ProbePacketsBatched += after.BatchedPackets - before.BatchedPackets
	if s.a.opts.WarmStore != nil && len(dirty) > 0 {
		s.saveVerdictsLocked(s.probeStoreFP, true)
	}
	return rep, nil
}

// ensureProbeStoreLocked keeps the probe rounds' warm-store key — the
// deployment fingerprint — in step with the deployment (pointer identity
// skips the hash) and seeds the probe cache from persisted verdicts the
// first time each fingerprint is seen. Probe mode has no shared base, so
// durable state is verdicts only; a restarted probe session replays a
// fingerprint-clean fabric with zero Classify calls.
func (s *Session) ensureProbeStoreLocked(d *compile.Deployment) {
	if s.a.opts.WarmStore == nil {
		return
	}
	if d != s.probeStoreDep {
		s.probeStoreFP = equiv.DeploymentFingerprint(d.BySwitch)
		s.probeStoreDep = d
	}
	s.seedVerdictsLocked(s.probeStoreFP, true)
}

// AnalyzeEpoch analyzes one collector epoch against the fabric's current
// deployment, anchored at the epoch's collection time — the delta
// re-verification path for periodic collection. When the session's
// previous run analyzed an earlier epoch, the epoch diff marks the dirty
// switches directly and clean switches skip fingerprinting entirely.
func (s *Session) AnalyzeEpoch(e *Epoch) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a.opts.UseProbes {
		return nil, s.errProbeSession("AnalyzeEpoch")
	}
	d := s.f.Deployment()
	if d == nil {
		return nil, fmt.Errorf("scout: fabric has never been deployed")
	}
	var cleanTCAM map[object.ID]bool
	if s.lastEpoch != nil {
		cleanTCAM = make(map[object.ID]bool, len(e.TCAM))
		for sw := range e.TCAM {
			cleanTCAM[sw] = true
		}
		for _, sw := range collect.DirtySwitches(s.lastEpoch, e) {
			delete(cleanTCAM, sw)
		}
	}
	rep, err := s.analyzeLocked(State{
		Deployment: d,
		TCAM:       e.TCAM,
		Changes:    s.f.ChangeLog(),
		Faults:     s.f.FaultLog(),
		Now:        e.Time,
	}, cleanTCAM)
	if err != nil {
		return nil, err
	}
	s.lastEpoch = e
	return rep, nil
}

// ApplyEvents is the event-driven refresh path: instead of analyzing a
// fully collected epoch, the session re-reads only the switches the
// batch names (one coalesced batch from a stream.Queue), aliases every
// other switch's rules from its previous epoch, and runs the usual
// incremental pipeline — so a storm of K events over S switches costs
// one partial collection and at most min(S, batch) re-checks per batch,
// while the report stays byte-identical to a full AnalyzeEpoch of the
// same final state at any worker count (the fold stages are unchanged).
//
// The first ApplyEvents run of a session (or the first after Invalidate
// or a failed run dropped the epoch anchor) has no previous epoch to
// alias, so it falls back to a full collection — the baseline every
// event-driven loop needs anyway. Correctness afterwards rests on the
// event contract: a switch with no event since the previous run has an
// unchanged TCAM. Feed every dataplane event through the queue (or
// interleave periodic AnalyzeEpoch rounds) to keep that true.
//
// An empty batch (a deadline timer firing with nothing pending) replays
// the previous verdicts without touching the fabric.
func (s *Session) ApplyEvents(batch EventBatch) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a.opts.UseProbes {
		return nil, s.errProbeSession("ApplyEvents")
	}
	d := s.f.Deployment()
	if d == nil {
		return nil, fmt.Errorf("scout: fabric has never been deployed")
	}
	var (
		tcams     map[object.ID][]rule.Rule
		cleanTCAM map[object.ID]bool
		seq       int
	)
	if s.lastEpoch == nil {
		tcams = s.f.CollectAll()
	} else {
		prev := s.lastEpoch
		seq = prev.Seq
		tcams = make(map[object.ID][]rule.Rule, len(prev.TCAM))
		cleanTCAM = make(map[object.ID]bool, len(prev.TCAM))
		for sw, rules := range prev.TCAM {
			tcams[sw] = rules
			cleanTCAM[sw] = true
		}
		for _, sw := range batch.Switches {
			rules, err := s.f.CollectTCAM(sw)
			if err != nil {
				return nil, fmt.Errorf("scout: event refresh: %w", err)
			}
			tcams[sw] = rules
			delete(cleanTCAM, sw)
		}
		s.stats.EventBatches++
		s.stats.EventSwitchesRead += len(batch.Switches)
		s.stats.EventSwitchesAliased += len(tcams) - len(batch.Switches)
	}
	now := s.f.Now()
	rep, err := s.analyzeLocked(State{
		Deployment: d,
		TCAM:       tcams,
		Changes:    s.f.ChangeLog(),
		Faults:     s.f.FaultLog(),
		Now:        now,
	}, cleanTCAM)
	if err != nil {
		return nil, err
	}
	// The synthetic epoch anchors the next partial refresh (and any
	// interleaved AnalyzeEpoch's diff). It carries the previous
	// collector sequence number forward: epoch Seq is a collector
	// lineage marker, and this epoch belongs to the session, not a
	// collector history.
	s.lastEpoch = &collect.Epoch{Seq: seq, Time: now, TCAM: tcams}
	return rep, nil
}

// AnalyzeState analyzes raw collected state incrementally (production
// users populating State themselves). The deployment and TCAM slices must
// not be mutated after the call.
func (s *Session) AnalyzeState(st State) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.a.opts.UseProbes {
		return nil, s.errProbeSession("AnalyzeState")
	}
	if st.Deployment == nil {
		return nil, fmt.Errorf("scout: state has no deployment")
	}
	return s.analyzeLocked(st, nil)
}

// Invalidate drops the cached check state of the given switches — or of
// every switch when none are given — forcing their re-check on the next
// run. Use it when out-of-band knowledge (a device RMA, a firmware
// upgrade) makes cached verdicts suspect.
func (s *Session) Invalidate(switches ...ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastEpoch = nil
	if len(switches) == 0 {
		s.cache = make(map[object.ID]*switchCheckState)
		s.probeCache = make(map[object.ID]*switchCheckState)
		s.a.swModels = make(map[object.ID]*switchModelEntry)
		return
	}
	for _, sw := range switches {
		delete(s.cache, sw)
		delete(s.probeCache, sw)
		delete(s.a.swModels, sw)
	}
}

// Reset drops every piece of cached state — per-switch reports, the
// controller-model cache, the shared encoding base, and the worker
// checkers — returning the session to cold. Statistics are preserved.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = make(map[object.ID]*switchCheckState)
	s.probeCache = make(map[object.ID]*switchCheckState)
	s.a.swModels = make(map[object.ID]*switchModelEntry)
	s.checkers = nil
	s.base = nil
	s.baseFP = 0
	s.baseDeployment = nil
	s.lastDeployment = nil
	s.ctrlPristine = nil
	s.lastEpoch = nil
}

// Close flushes the session's pending warm-state writes and reports the
// first persistence error. The warm store itself is shared — many
// sessions (and a registry) may feed one — so Close does not close it;
// the store's owner does, once, when the process winds down. A session
// without a WarmStore has nothing to flush and Close is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	ws := s.a.opts.WarmStore
	s.mu.Unlock()
	if ws == nil {
		return nil
	}
	return ws.Flush()
}

// Stats returns the session's cumulative cache statistics.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ProberStats returns the probe-mode prober's counter snapshot (memo
// hits/misses and batch-classification counters) and whether a prober
// exists yet. Zero-valued until the first probe-mode Analyze.
func (s *Session) ProberStats() (probe.Stats, bool) {
	return s.a.ProberStats()
}

// analyzeLocked is the incremental pipeline. cleanTCAM, when non-nil,
// names switches whose TCAM rules are known-identical to the session's
// previous run (from an epoch diff); their fingerprints are trusted from
// cache. Every run ends byte-identical to a cold Analyzer run on the same
// State: caching only ever short-circuits the check stage, never the
// folds.
func (s *Session) analyzeLocked(st State, cleanTCAM map[object.ID]bool) (*Report, error) {
	start := time.Now()
	// Until this run completes, epoch-diff hints would compare against
	// state older than what the cache entries reflect.
	s.lastEpoch = nil
	st = st.withDefaultLogs()
	switches := st.sortedSwitches()

	ctrlModel := s.controllerModelLocked(st.Deployment)
	depFPs := s.ensureBaseLocked(st.Deployment)
	encBefore := s.encodeTotalsLocked()

	// Partition the switches into replays and re-checks.
	checkReps := make([]*equiv.Report, len(switches))
	logFPs := make([]uint64, len(switches))
	tcamFPs := make([]uint64, len(switches))
	var dirty []object.ID
	var dirtyIdx []int
	for i, sw := range switches {
		ent := s.cache[sw]
		if ent != nil && ent.dep == st.Deployment {
			logFPs[i] = ent.logicalFP
		} else if fp, ok := depFPs[sw]; ok {
			logFPs[i] = fp
		} else {
			logFPs[i] = equiv.Fingerprint(st.Deployment.RulesFor(sw))
		}
		if ent != nil && cleanTCAM != nil && cleanTCAM[sw] {
			tcamFPs[i] = ent.tcamFP
		} else {
			tcamFPs[i] = equiv.Fingerprint(st.TCAM[sw])
		}
		if ent == nil || logFPs[i] != ent.logicalFP || tcamFPs[i] != ent.tcamFP {
			dirty = append(dirty, sw)
			dirtyIdx = append(dirtyIdx, i)
			continue
		}
		ent.dep = st.Deployment // refresh identity for the next run's shortcut
		checkReps[i] = ent.report
	}

	var plan *dedupPlan
	if len(dirty) > 0 {
		s.provisionCheckersLocked(s.a.workers(len(dirty)))
		check := func(c *equiv.Checker, sw object.ID) (*equiv.Report, error) {
			return s.a.checkState(st, c, sw)
		}
		var fresh []*equiv.Report
		var err error
		if s.a.dedupEnabled() {
			// Dirty switches sharing both fingerprints — which the
			// partition above already computed — check once per group.
			dirtyLog := make([]uint64, len(dirty))
			dirtyTCAM := make([]uint64, len(dirty))
			for j, i := range dirtyIdx {
				dirtyLog[j] = logFPs[i]
				dirtyTCAM[j] = tcamFPs[i]
			}
			fresh, plan, err = s.a.checkDeduped(st, dirty, dirtyLog, dirtyTCAM, s.workerChecker, check)
			if err == nil {
				s.stats.DedupGroups += plan.groups
				s.stats.DedupReplays += plan.replays
			}
		} else {
			fresh, err = s.a.checkAllWith(dirty, s.workerChecker, check)
		}
		if err != nil {
			return nil, err
		}
		capRules := s.missingRuleCap()
		for j, i := range dirtyIdx {
			checkReps[i] = fresh[j]
			if capRules > 0 && len(fresh[j].MissingRules)+len(fresh[j].ExtraRules) > capRules {
				// Too large to keep: drop any stale entry so the switch
				// re-checks next run instead of replaying old state.
				delete(s.cache, switches[i])
				s.stats.OverCap++
				continue
			}
			s.cache[switches[i]] = &switchCheckState{
				dep:       st.Deployment,
				logicalFP: logFPs[i],
				tcamFP:    tcamFPs[i],
				report:    fresh[j],
			}
		}
	}

	rep := s.a.assemble(ctrlModel, st.Deployment, st.Changes, st.Faults, st.Now, switches, checkReps)
	rep.Elapsed = time.Since(start)
	s.stats.Runs++
	s.stats.addLocalizeStats(rep.LocalizeStats)
	s.stats.Checked += len(dirty)
	s.stats.Replayed += len(switches) - len(dirty)
	if !s.a.opts.UseNaiveChecker {
		enc := equiv.AggregateEncodeStats(s.base, s.checkers)
		plan.record(enc)
		rep.EncodeStats = enc
		s.stats.BaseNodes = enc.BaseNodes
		s.stats.DeltaNodes = enc.DeltaNodes
		s.stats.BaseSemantics = enc.BaseSemantics
		encAfter := encodeTotals{
			hits: enc.Hits(), misses: enc.Misses,
			foldHits: enc.FoldHits(), foldMisses: enc.FoldMisses,
		}
		s.stats.EncodeHits += encAfter.hits - encBefore.hits
		s.stats.EncodeMisses += encAfter.misses - encBefore.misses
		s.stats.FoldHits += encAfter.foldHits - encBefore.foldHits
		s.stats.FoldMisses += encAfter.foldMisses - encBefore.foldMisses
	}
	// Persist the refreshed verdict cache write-behind. Gated on the
	// shared-base mode (base non-nil and in step with this deployment):
	// naive and private-checker sessions have no deployment fingerprint
	// on hand, and their runs are ablation baselines that should not grow
	// durable state. A run that re-checked nothing changed no verdicts.
	if ws := s.a.opts.WarmStore; ws != nil && len(dirty) > 0 &&
		s.base != nil && st.Deployment == s.baseDeployment {
		s.saveVerdictsLocked(s.baseFP, false)
	}
	return rep, nil
}

// encodeTotals is a point-in-time sum of the live checkers' cumulative
// encoding and fold counters, used to attribute per-run deltas to
// SessionStats (the checkers themselves persist across runs, so their
// counters alone cannot distinguish this run's work from history).
type encodeTotals struct{ hits, misses, foldHits, foldMisses int }

func (s *Session) encodeTotalsLocked() encodeTotals {
	var t encodeTotals
	for _, c := range s.checkers {
		cs := c.Stats()
		t.hits += cs.BaseHits + cs.LocalHits
		t.misses += cs.Misses
		t.foldHits += cs.FoldBaseHits + cs.FoldLocalHits
		t.foldMisses += cs.FoldMisses
	}
	return t
}

// ensureBaseLocked keeps the shared encoding base in step with the
// deployment: reused while the deployment fingerprint is unchanged
// (pointer identity short-circuits the hashing), rebuilt — discarding
// the now-stale checker forks — when it moves. Runs before any checker
// provisioning so workers always fork the current base. When the
// deployment had to be hashed, the per-switch fingerprints are returned
// so the caller's replay/re-check partition reuses them instead of
// hashing every rule list a second time (nil on the fast paths).
func (s *Session) ensureBaseLocked(d *compile.Deployment) map[object.ID]uint64 {
	if s.a.opts.UseNaiveChecker || s.a.opts.PrivateCheckers {
		return nil
	}
	if s.base != nil && d == s.baseDeployment {
		return nil
	}
	perSwitch, fp := equiv.DeploymentFingerprints(d.BySwitch)
	if s.base != nil && fp == s.baseFP {
		// Content-identical recompile at a new address: keep the base but
		// re-point its semantics entries at the new deployment's slices,
		// so the superseded deployment is not pinned by the cache. Safe
		// here — the run lock is held and no checker is mid-check.
		s.base.RebindSemantics(d.BySwitch)
		s.baseDeployment = d
		return perSwitch
	}
	if ws := s.a.opts.WarmStore; ws != nil {
		// Warm restart: restore a fingerprint-matching frozen base from
		// the store before building one — the loaded base carries every
		// match encoding and semantics root the previous process froze,
		// so a clean fabric replays with zero encodes. A missing or
		// unverifiable file is just a cold start. Rebinding re-points the
		// collision-verification rule references at this deployment's
		// slices, releasing the decoded copies.
		if b, err := ws.LoadBase(fp); err == nil && b != nil {
			b.RebindSemantics(d.BySwitch)
			s.base = b
			s.baseFP = fp
			s.baseDeployment = d
			s.checkers = nil
			s.stats.BaseLoads++
			if reg := s.a.opts.BaseRegistry; reg != nil {
				reg.RegisterBase(b)
			}
			s.seedVerdictsLocked(fp, false)
			return perSwitch
		}
	}
	base, bstats := s.a.buildSharedBase(d)
	s.base = base
	s.baseFP = fp
	s.baseDeployment = d
	s.checkers = nil
	s.stats.BaseRebuilds++
	s.stats.BaseSemGrafts += bstats.SemGrafts
	s.stats.BaseSemFolds += bstats.SemFolds
	if ws := s.a.opts.WarmStore; ws != nil && base != nil {
		ws.SaveBase(fp, base)
		s.seedVerdictsLocked(fp, false)
	}
	return perSwitch
}

// seedVerdictsLocked restores persisted per-switch verdicts for the
// deployment fingerprint into the session cache, once per (fingerprint,
// mode) pair per session. Only absent slots are filled: an in-memory
// entry is at least as fresh as the file it was persisted to. Loaded
// entries carry no deployment pointer, so the next run's partition
// verifies them by recomputed fingerprint — a replay happens only when
// the logical and TCAM rule lists hash identically, making a stale or
// foreign file safe (its entries simply never match).
func (s *Session) seedVerdictsLocked(depFP uint64, probe bool) {
	ws := s.a.opts.WarmStore
	if ws == nil {
		return
	}
	key := verdictLoadKey{fp: depFP, probe: probe}
	if _, done := s.loadedVerdicts[key]; done {
		return
	}
	s.loadedVerdicts[key] = struct{}{}
	vs, err := ws.LoadVerdicts(depFP, probe)
	if err != nil {
		return // unverifiable file: cold start for these switches
	}
	cache := s.cache
	if probe {
		cache = s.probeCache
	}
	for _, v := range vs {
		if _, ok := cache[v.Switch]; ok {
			continue
		}
		cache[v.Switch] = &switchCheckState{
			logicalFP: v.LogicalFP,
			tcamFP:    v.TCAMFP,
			report:    v.Report,
		}
	}
}

// saveVerdictsLocked schedules write-behind persistence of the current
// per-switch cache under the deployment fingerprint. The snapshot slice
// is built here, under the run lock; cached reports are immutable, so
// the background encode needs no further coordination.
func (s *Session) saveVerdictsLocked(depFP uint64, probe bool) {
	cache := s.cache
	if probe {
		cache = s.probeCache
	}
	vs := make([]store.Verdict, 0, len(cache))
	for sw, ent := range cache {
		vs = append(vs, store.Verdict{
			Switch:    sw,
			LogicalFP: ent.logicalFP,
			TCAMFP:    ent.tcamFP,
			Report:    ent.report,
		})
	}
	s.a.opts.WarmStore.SaveVerdicts(depFP, probe, vs)
}

// controllerModelLocked returns a fresh working controller view: a
// copy-on-write overlay over the cached immutable pristine model while
// the deployment is unchanged, a new (sharded) build — cached as the next
// pristine core — otherwise. The overlay shares the pristine core's
// element and risk IDs and records only this run's failure marks, so
// localization through it is indistinguishable from a cold build or a
// deep clone while per-run setup cost stays O(dirty failures) instead of
// O(model size). The session never mutates the pristine model itself.
func (s *Session) controllerModelLocked(d *compile.Deployment) risk.Marker {
	if s.ctrlPristine == nil || d != s.lastDeployment {
		s.ctrlPristine = s.a.controllerModel(d)
		s.lastDeployment = d
	}
	return risk.NewOverlay(s.ctrlPristine)
}

// missingRuleCap resolves the per-switch cached-rule bound: 0 picks the
// default, negative disables the cap (returns 0 = unbounded).
func (s *Session) missingRuleCap() int {
	c := s.a.opts.SessionMissingRuleCap
	if c == 0 {
		return defaultSessionMissingRuleCap
	}
	if c < 0 {
		return 0
	}
	return c
}

// provisionCheckersLocked grows the persistent checker pool to n entries
// — forks of the shared base when one exists — and brings any checker
// whose private delta exceeded the node budget back under it, before the
// worker pool starts (workers must never mutate the slice concurrently).
// Over-budget checkers compact first (delta GC keeping live memo state)
// and fall back to a full Reset only when the live state alone is over
// budget — the ROADMAP's "smarter than whole-delta Reset".
func (s *Session) provisionCheckersLocked(n int) {
	if s.a.opts.UseNaiveChecker {
		return
	}
	budget := s.sessionNodeBudget()
	for len(s.checkers) < n {
		s.checkers = append(s.checkers, s.a.newWorkerCheckerSized(s.base, s.checkerDeltaHint(budget)))
	}
	if budget <= 0 {
		return
	}
	for _, c := range s.checkers[:n] {
		if c.DeltaSize() <= budget {
			continue
		}
		if st, ok := c.Compact(); ok {
			s.stats.CheckerCompactions++
			s.stats.CompactRetained += st.Retained
			s.stats.CompactDropped += st.Dropped
			if c.DeltaSize() <= budget {
				continue
			}
		}
		c.Reset()
		s.stats.CheckerResets++
	}
}

// sessionNodeBudget resolves the configured per-checker delta budget:
// the default when unset, no bound when negative.
func (s *Session) sessionNodeBudget() int {
	b := s.a.opts.SessionNodeBudget
	if b == 0 {
		return sessionCheckerNodeBudget
	}
	if b < 0 {
		return 0
	}
	return b
}

// checkerDeltaHint derives the fork pre-sizing from the budget: a
// fraction of it (deltas rarely fill the budget between compactions),
// clamped so tiny budgets still get workable tables and huge ones do
// not front-load allocation the checker may never need.
func (s *Session) checkerDeltaHint(budget int) int {
	h := budget / 16
	if h < 4096 {
		return 4096
	}
	if h > 1<<18 {
		return 1 << 18
	}
	return h
}

// workerChecker hands worker k its persistent checker (nil in naive mode,
// which never touches it).
func (s *Session) workerChecker(k int) *equiv.Checker {
	if s.a.opts.UseNaiveChecker {
		return nil
	}
	return s.checkers[k]
}
