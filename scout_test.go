package scout_test

import (
	"strings"
	"testing"

	"scout"
)

// threeTier builds the paper's running example (Figure 1): a 3-tier web
// service with Web, App, and DB EPGs on three switches.
func threeTier(t testing.TB) (*scout.Policy, *scout.Topology) {
	t.Helper()
	p := scout.NewPolicy("three-tier")
	p.AddVRF(scout.VRF{ID: 101, Name: "vrf-101"})
	p.AddEPG(scout.EPG{ID: 1, Name: "Web", VRF: 101})
	p.AddEPG(scout.EPG{ID: 2, Name: "App", VRF: 101})
	p.AddEPG(scout.EPG{ID: 3, Name: "DB", VRF: 101})
	p.AddEndpoint(scout.Endpoint{ID: 11, Name: "EP1", EPG: 1, Switch: 1})
	p.AddEndpoint(scout.Endpoint{ID: 12, Name: "EP2", EPG: 2, Switch: 2})
	p.AddEndpoint(scout.Endpoint{ID: 13, Name: "EP3", EPG: 3, Switch: 3})
	p.AddFilter(scout.Filter{ID: 80, Name: "port-80", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 80),
	}})
	p.AddFilter(scout.Filter{ID: 700, Name: "port-700", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 700),
	}})
	p.AddContract(scout.Contract{ID: 201, Name: "Web-App", Filters: []scout.ObjectID{80}})
	p.AddContract(scout.Contract{ID: 202, Name: "App-DB", Filters: []scout.ObjectID{80, 700}})
	p.Bind(1, 2, 201)
	p.Bind(2, 3, 202)
	if err := p.Validate(); err != nil {
		t.Fatalf("three-tier policy invalid: %v", err)
	}
	return p, scout.TopologyFromPolicy(p)
}

func TestAnalyzeConsistentFabric(t *testing.T) {
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Fatalf("expected consistent fabric, got report: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "consistent") {
		t.Errorf("summary should mention consistency: %q", rep.Summary())
	}
}

func TestAnalyzeLocalizesEvictedFilter(t *testing.T) {
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}

	// Full fault on filter 700: every TCAM rule derived from it vanishes.
	removed, err := f.InjectObjectFault(scout.FilterRef(700), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("fault injection removed no rules")
	}

	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("expected inconsistency after fault injection")
	}
	found := false
	for _, ref := range rep.Hypothesis {
		if ref == scout.FilterRef(700) {
			found = true
		}
	}
	if !found {
		t.Errorf("hypothesis %v should contain filter:700", rep.Hypothesis)
	}
}

func TestAnalyzeUnresponsiveSwitch(t *testing.T) {
	p, topo := threeTier(t)
	f, err := scout.NewFabric(p, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}

	// Switch 2 goes dark; a new filter is then pushed, so S2 misses it.
	if err := f.Disconnect(2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilter(scout.Filter{ID: 443, Name: "port-443", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 443),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(202, 443); err != nil {
		t.Fatal(err)
	}

	rep, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent {
		t.Fatal("expected inconsistency: switch 2 missed the new filter")
	}
	// Only switch 2 should be inconsistent.
	for _, sr := range rep.Switches {
		wantEquivalent := sr.Switch != 2
		if sr.Equivalent != wantEquivalent {
			t.Errorf("switch %d equivalent=%v, want %v", sr.Switch, sr.Equivalent, wantEquivalent)
		}
	}
	// Root cause should name the unresponsive switch.
	if rep.RootCauses == nil || len(rep.RootCauses.RootCauses) == 0 {
		t.Fatalf("expected a root cause; summary:\n%s", rep.Summary())
	}
	rc := rep.RootCauses.RootCauses[0]
	if rc.Signature != "unresponsive-switch" || rc.Switch != 2 {
		t.Errorf("top root cause = %q on switch %d, want unresponsive-switch on 2", rc.Signature, rc.Switch)
	}
}
