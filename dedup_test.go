package scout_test

import (
	"bytes"
	"runtime"
	"testing"

	"scout"
	"scout/internal/eval"
)

// dupState extends the fabric's collected state with byte-equal clone
// switches (eval.DuplicateSwitches, shared with the foldshare
// experiment) — the duplicate groups the whole-switch check dedup
// collapses. The second return is the number of clones added.
func dupState(t testing.TB, f *scout.Fabric) (scout.State, int) {
	t.Helper()
	dup, tcam, clones := eval.DuplicateSwitches(f.Deployment(), f.CollectAll())
	if clones == 0 {
		t.Fatal("fabric has no switches to clone")
	}
	return scout.State{
		Deployment: dup,
		TCAM:       tcam,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        f.Now(),
	}, clones
}

// TestDedupIdentityWithDuplicateSwitches is the whole-switch check-dedup
// identity regression: on a state with byte-equal duplicate switches
// (consistent and faulty groups alike), the dedup/shared-semantics mode
// must report byte-identically to the private per-worker mode at every
// worker count — dedup moves check work, never check results.
func TestDedupIdentityWithDuplicateSwitches(t *testing.T) {
	f := faultyFabric(t, 7)
	st, clones := dupState(t, f)

	analyze := func(opts scout.AnalyzerOptions) *scout.Report {
		t.Helper()
		rep, err := scout.NewAnalyzer(opts).AnalyzeState(st)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	baseline := marshalReport(t, analyze(scout.AnalyzerOptions{Workers: 1, PrivateCheckers: true}))
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		for _, private := range []bool{false, true} {
			got := marshalReport(t, analyze(scout.AnalyzerOptions{Workers: workers, PrivateCheckers: private}))
			if !bytes.Equal(baseline, got) {
				t.Errorf("Workers=%d PrivateCheckers=%v report differs from serial private baseline",
					workers, private)
			}
		}
	}

	// The plan's shape: every clone replays its original's verdict, and
	// at least one group is multi-member.
	shared := analyze(scout.AnalyzerOptions{Workers: 2}).EncodeStats
	if shared.DedupReplays < clones {
		t.Errorf("DedupReplays = %d, want at least the %d clones", shared.DedupReplays, clones)
	}
	if shared.DedupGroups == 0 {
		t.Error("duplicate switches must form dedup groups")
	}
	// Semantics sharing: the duplicated lists' folds are frozen once in
	// the base and resolved from it, never re-folded per fork.
	if shared.BaseSemantics == 0 {
		t.Errorf("base froze no semantics roots: %+v", shared)
	}
	if shared.FoldBaseHits == 0 {
		t.Errorf("checks never hit a frozen semantics root: %+v", shared)
	}

	private := analyze(scout.AnalyzerOptions{Workers: 2, PrivateCheckers: true}).EncodeStats
	if private.DedupGroups != 0 || private.DedupReplays != 0 {
		t.Errorf("private mode must not dedup: %+v", private)
	}
	if private.FoldBaseHits != 0 || private.BaseSemantics != 0 {
		t.Errorf("private mode must not touch frozen semantics: %+v", private)
	}
	if shared.FoldMisses >= private.FoldMisses {
		t.Errorf("shared mode folded %d lists privately, private mode %d — semantics base not consulted",
			shared.FoldMisses, private.FoldMisses)
	}
}

// TestDedupErrorAttribution: when a dedup group's rule lists cannot be
// encoded, the error still names a switch that genuinely owns the
// offending rules (the group's representative).
func TestDedupErrorAttribution(t *testing.T) {
	badRule := scout.Rule{
		Match:  scout.RuleMatch{VRF: 1 << 17, SrcEPG: 1, DstEPG: 2, PortLo: 80, PortHi: 80},
		Action: scout.Allow,
	}
	bySwitch := make(map[scout.ObjectID][]scout.Rule)
	tcamState := make(map[scout.ObjectID][]scout.Rule)
	for sw := scout.ObjectID(1); sw <= 4; sw++ {
		bySwitch[sw] = []scout.Rule{badRule} // all four form one dedup group
		tcamState[sw] = nil
	}
	_, err := scout.NewAnalyzer(scout.AnalyzerOptions{Workers: 2}).AnalyzeState(scout.State{
		Deployment: &scout.Deployment{BySwitch: bySwitch},
		TCAM:       tcamState,
	})
	if err == nil {
		t.Fatal("expected encoding error")
	}
	// The group representative is the lowest member, switch 1.
	if want := "equivalence check switch 1:"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q should be attributed to the group representative (switch 1)", err)
	}
}
