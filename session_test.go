package scout_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"scout"
)

// marshalReport serializes a report with the wall-clock field zeroed so
// byte comparison sees only pipeline output.
func marshalReport(t testing.TB, rep *scout.Report) []byte {
	t.Helper()
	rep.Elapsed = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// stateFromEpoch reconstructs the exact State a session run on the epoch
// analyzes, for cold-analyzer comparison.
func stateFromEpoch(f *scout.Fabric, e *scout.Epoch) scout.State {
	return scout.State{
		Deployment: f.Deployment(),
		TCAM:       e.TCAM,
		Changes:    f.ChangeLog(),
		Faults:     f.FaultLog(),
		Now:        e.Time,
	}
}

// removeOneRule deletes the highest-priority TCAM rule of sw (an allow
// rule on whitelist fabrics, so the switch becomes inequivalent) and
// returns it.
func removeOneRule(t *testing.T, f *scout.Fabric, sw scout.ObjectID) scout.Rule {
	t.Helper()
	rules, err := f.CollectTCAM(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatalf("switch %d has an empty TCAM", sw)
	}
	s, err := f.Switch(sw)
	if err != nil {
		t.Fatal(err)
	}
	if !s.TCAM().Remove(rules[0].Key()) {
		t.Fatalf("switch %d: failed to remove %s", sw, rules[0])
	}
	return rules[0]
}

// TestSessionIncrementalSingleSwitch is the regression test for the
// incremental session: a warm re-analysis after mutating one switch's
// rules must re-check only that switch and produce a report
// byte-identical to a cold full analysis, at every worker count. Warm
// runs localize through a copy-on-write overlay over the cached
// pristine controller model while the cold analyzer annotates a fresh
// build, so the byte comparison also pins overlay/model
// interchangeability end to end.
func TestSessionIncrementalSingleSwitch(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		f := faultyFabric(t, 7)
		opts := scout.AnalyzerOptions{Workers: workers}
		sess, err := scout.NewSession(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		collector := scout.NewCollector(f, 8)
		numSwitches := f.Topology().NumSwitches()

		// Cold session run: every switch is checked.
		e1 := collector.Snapshot()
		warm1, err := sess.AnalyzeEpoch(e1)
		if err != nil {
			t.Fatal(err)
		}
		if st := sess.Stats(); st.Checked != numSwitches || st.Replayed != 0 {
			t.Fatalf("workers=%d cold run stats = %+v, want %d checked", workers, st, numSwitches)
		}
		cold1, err := scout.NewAnalyzer(opts).AnalyzeState(stateFromEpoch(f, e1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm1), marshalReport(t, cold1)) {
			t.Errorf("workers=%d: cold session report differs from analyzer", workers)
		}

		// Mutate exactly one switch, then re-analyze the next epoch.
		dirtySw := f.Topology().Switches()[1]
		removeOneRule(t, f, dirtySw)
		before := sess.Stats()
		e2 := collector.Snapshot()
		warm2, err := sess.AnalyzeEpoch(e2)
		if err != nil {
			t.Fatal(err)
		}
		after := sess.Stats()
		if got := after.Checked - before.Checked; got != 1 {
			t.Errorf("workers=%d: warm run re-checked %d switches, want 1", workers, got)
		}
		if got := after.Replayed - before.Replayed; got != numSwitches-1 {
			t.Errorf("workers=%d: warm run replayed %d switches, want %d", workers, got, numSwitches-1)
		}
		cold2, err := scout.NewAnalyzer(opts).AnalyzeState(stateFromEpoch(f, e2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm2), marshalReport(t, cold2)) {
			t.Errorf("workers=%d: warm delta report differs from cold analyzer", workers)
		}

		// No-change epoch: nothing is re-checked and the report repeats.
		e3 := collector.Snapshot()
		warm3, err := sess.AnalyzeEpoch(e3)
		if err != nil {
			t.Fatal(err)
		}
		if got := sess.Stats().Checked - after.Checked; got != 0 {
			t.Errorf("workers=%d: no-change run re-checked %d switches", workers, got)
		}
		if !bytes.Equal(marshalReport(t, warm3), marshalReport(t, warm2)) {
			t.Errorf("workers=%d: no-change report differs from previous run", workers)
		}
	}
}

// TestSessionLogicalInvalidation covers the deployment side of dirtiness:
// a policy change recompiles the deployment, and the session re-checks the
// switches whose logical rules changed while still matching a cold run.
func TestSessionLogicalInvalidation(t *testing.T) {
	f := faultyFabric(t, 19)
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}

	pol := f.Policy()
	if err := f.AddFilter(scout.Filter{ID: 64123, Name: "rollout", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 64123),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(pol.Bindings[0].Contract, 64123); err != nil {
		t.Fatal(err)
	}

	before := sess.Stats()
	warm, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	delta := sess.Stats().Checked - before.Checked
	if delta == 0 {
		t.Error("policy change dirtied no switches")
	}
	cold, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, warm), marshalReport(t, cold)) {
		t.Error("post-change session report differs from cold analyzer")
	}
}

// TestSessionInvalidate covers manual invalidation: per-switch, full, and
// the Reset that also drops the checker pool.
func TestSessionInvalidate(t *testing.T) {
	f := faultyFabric(t, 23)
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	n := f.Topology().NumSwitches()
	sw := f.Topology().Switches()[0]

	run := func() int {
		t.Helper()
		before := sess.Stats().Checked
		if _, err := sess.Analyze(); err != nil {
			t.Fatal(err)
		}
		return sess.Stats().Checked - before
	}

	if got := run(); got != 0 {
		t.Errorf("steady-state run re-checked %d switches", got)
	}
	sess.Invalidate(sw)
	if got := run(); got != 1 {
		t.Errorf("after Invalidate(one): re-checked %d switches, want 1", got)
	}
	sess.Invalidate()
	if got := run(); got != n {
		t.Errorf("after Invalidate(): re-checked %d switches, want %d", got, n)
	}
	sess.Reset()
	if got := run(); got != n {
		t.Errorf("after Reset: re-checked %d switches, want %d", got, n)
	}
}

// TestSessionNaiveChecker exercises the session through the ablation
// checker path (no BDD checkers to provision or reuse).
func TestSessionNaiveChecker(t *testing.T) {
	f := faultyFabric(t, 13)
	opts := scout.AnalyzerOptions{UseNaiveChecker: true, Workers: 4}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm1, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().Checked; got != f.Topology().NumSwitches() {
		t.Errorf("second naive run re-checked switches: total checked %d", got)
	}
	cold, err := scout.NewAnalyzer(opts).Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON := marshalReport(t, cold)
	if !bytes.Equal(marshalReport(t, warm1), coldJSON) || !bytes.Equal(marshalReport(t, warm2), coldJSON) {
		t.Error("naive session reports differ from cold analyzer")
	}
}

// TestSessionMissingRuleCap covers the cached-report bound: switches
// whose reports exceed SessionMissingRuleCap are not cached and fall back
// to a re-check on the next run, while the reports themselves stay
// byte-identical to an uncapped session and a cold analyzer.
func TestSessionMissingRuleCap(t *testing.T) {
	f := faultyFabric(t, 7)
	n := f.Topology().NumSwitches()

	// Cap of 1: any switch with more than one missing/extra rule is too
	// big to cache. The injected faults guarantee several such switches.
	capped, err := scout.NewSession(f, scout.AnalyzerOptions{SessionMissingRuleCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := capped.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	st := capped.Stats()
	if st.OverCap == 0 {
		t.Fatal("no switch exceeded the cap; test is vacuous")
	}
	if st.OverCap > n {
		t.Fatalf("OverCap = %d exceeds switch count %d", st.OverCap, n)
	}

	// Steady-state re-run: over-cap switches re-check, the rest replay.
	rep2, err := capped.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	st2 := capped.Stats()
	if got := st2.Checked - st.Checked; got != st.OverCap {
		t.Errorf("second run re-checked %d switches, want %d (the over-cap set)", got, st.OverCap)
	}
	if got := st2.Replayed - st.Replayed; got != n-st.OverCap {
		t.Errorf("second run replayed %d switches, want %d", got, n-st.OverCap)
	}

	cold, err := scout.NewAnalyzer().Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON := marshalReport(t, cold)
	if !bytes.Equal(marshalReport(t, rep1), coldJSON) || !bytes.Equal(marshalReport(t, rep2), coldJSON) {
		t.Error("capped session reports differ from cold analyzer")
	}

	// A negative cap disables the bound entirely.
	unbounded, err := scout.NewSession(f, scout.AnalyzerOptions{SessionMissingRuleCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Analyze(); err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Analyze(); err != nil {
		t.Fatal(err)
	}
	ust := unbounded.Stats()
	if ust.OverCap != 0 {
		t.Errorf("unbounded session reported OverCap = %d", ust.OverCap)
	}
	if ust.Checked != n {
		t.Errorf("unbounded session checked %d switches across two runs, want %d", ust.Checked, n)
	}
}

// TestSessionSharedBasePersistence pins the base lifecycle: one build
// serves every run of an unchanged deployment (TCAM drift included), a
// recompiled deployment rebuilds it, and Reset drops it.
func TestSessionSharedBasePersistence(t *testing.T) {
	f := faultyFabric(t, 7)
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.BaseRebuilds != 1 {
		t.Fatalf("cold run: BaseRebuilds = %d, want 1", st.BaseRebuilds)
	}
	if st.BaseNodes == 0 {
		t.Error("cold run must report base nodes")
	}
	// Every deployment match resolves from the base; only the corrupted
	// TCAM entries' novel matches are encoded from scratch.
	if st.EncodeHits == 0 {
		t.Errorf("cold run encode counters: hits=%d, want > 0", st.EncodeHits)
	}

	// TCAM drift dirties a switch but must not rebuild the base, and the
	// re-check of warmed matches must be all hits.
	removeOneRule(t, f, f.Topology().Switches()[0])
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	st2 := sess.Stats()
	if st2.BaseRebuilds != 1 {
		t.Errorf("TCAM drift rebuilt the base: BaseRebuilds = %d", st2.BaseRebuilds)
	}
	if st2.EncodeHits <= st.EncodeHits {
		t.Error("warm re-check must hit the persisted base")
	}
	if st2.EncodeMisses != st.EncodeMisses {
		t.Errorf("warm re-check of warmed matches encoded from scratch: misses %d -> %d",
			st.EncodeMisses, st2.EncodeMisses)
	}

	// A policy change recompiles the deployment: new fingerprint, one
	// rebuild.
	if err := f.AddFilter(scout.Filter{ID: 64200, Name: "rollout", Entries: []scout.FilterEntry{
		scout.PortEntry(scout.ProtoTCP, 64200),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFilterToContract(f.Policy().Bindings[0].Contract, 64200); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().BaseRebuilds; got != 2 {
		t.Errorf("deployment change: BaseRebuilds = %d, want 2", got)
	}

	// Reset returns to cold: the next run rebuilds.
	sess.Reset()
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().BaseRebuilds; got != 3 {
		t.Errorf("after Reset: BaseRebuilds = %d, want 3", got)
	}
}

// TestSessionPrivateCheckers drives a session with the shared base
// disabled: reports must stay byte-identical to the default mode, with
// no base ever built.
func TestSessionPrivateCheckers(t *testing.T) {
	f := faultyFabric(t, 29)
	private, err := scout.NewSession(f, scout.AnalyzerOptions{PrivateCheckers: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := scout.NewSession(f, scout.AnalyzerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := private.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := shared.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, p1), marshalReport(t, s1)) {
		t.Error("private-checker session report differs from shared-base session")
	}
	pst := private.Stats()
	if pst.BaseRebuilds != 0 || pst.BaseNodes != 0 {
		t.Errorf("private-checker session built a base: %+v", pst)
	}
	if pst.DeltaNodes == 0 || pst.EncodeMisses == 0 {
		t.Errorf("private-checker session must still count its own work: %+v", pst)
	}
	if sst := shared.Stats(); sst.BaseRebuilds != 1 || sst.BaseNodes == 0 {
		t.Errorf("shared session base counters: %+v", sst)
	}
}

// TestSessionProbeWarmReplay is the probe-mode replay regression test:
// a warm probe round on an unchanged fabric performs zero Classify
// calls (every switch's verdict replays off its TCAM fingerprint, and
// the prober's batch counters stand still), a one-switch mutation
// re-classifies exactly that switch, and every round's report is
// byte-identical to a cold Analyzer probe run — at workers 1, 2, and
// NumCPU.
func TestSessionProbeWarmReplay(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		f := faultyFabric(t, 3)
		opts := scout.AnalyzerOptions{UseProbes: true, Workers: workers}
		sess, err := scout.NewSession(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		numSwitches := f.Topology().NumSwitches()

		// Cold round: every switch's probes are classified, in batches.
		warm1, err := sess.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		st := sess.Stats()
		if st.ProbeSwitchesClassified != numSwitches || st.ProbeSwitchesReplayed != 0 {
			t.Fatalf("workers=%d cold probe stats = %+v, want %d classified", workers, st, numSwitches)
		}
		if st.ProbePacketsBatched == 0 {
			t.Fatalf("workers=%d: cold probe round batched no packets", workers)
		}
		cold1, err := scout.NewAnalyzer(opts).Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm1), marshalReport(t, cold1)) {
			t.Errorf("workers=%d: cold probe session report differs from analyzer", workers)
		}

		// Warm round on the unchanged fabric: all replay, zero Classify —
		// the prober's batch and fallback counters must not move.
		pBefore, ok := sess.ProberStats()
		if !ok {
			t.Fatal("probe session has no prober after a round")
		}
		warm2, err := sess.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		pAfter, _ := sess.ProberStats()
		st2 := sess.Stats()
		if got := st2.ProbeSwitchesReplayed - st.ProbeSwitchesReplayed; got != numSwitches {
			t.Errorf("workers=%d: warm round replayed %d switches, want %d", workers, got, numSwitches)
		}
		if got := st2.ProbeSwitchesClassified - st.ProbeSwitchesClassified; got != 0 {
			t.Errorf("workers=%d: warm round classified %d switches, want 0", workers, got)
		}
		if pAfter.BatchPasses != pBefore.BatchPasses || pAfter.BatchedPackets != pBefore.BatchedPackets ||
			pAfter.FallbackProbes != pBefore.FallbackProbes {
			t.Errorf("workers=%d: warm round touched the dataplane: %+v -> %+v", workers, pBefore, pAfter)
		}
		if !bytes.Equal(marshalReport(t, warm1), marshalReport(t, warm2)) {
			t.Errorf("workers=%d: warm probe replay report differs from cold round", workers)
		}

		// Mutate one switch: exactly it re-classifies, the rest replay.
		dirtySw := f.Topology().Switches()[1]
		removeOneRule(t, f, dirtySw)
		warm3, err := sess.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		st3 := sess.Stats()
		if got := st3.ProbeSwitchesClassified - st2.ProbeSwitchesClassified; got != 1 {
			t.Errorf("workers=%d: post-mutation round classified %d switches, want 1", workers, got)
		}
		if got := st3.ProbeSwitchesReplayed - st2.ProbeSwitchesReplayed; got != numSwitches-1 {
			t.Errorf("workers=%d: post-mutation round replayed %d switches, want %d", workers, got, numSwitches-1)
		}
		cold3, err := scout.NewAnalyzer(opts).Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm3), marshalReport(t, cold3)) {
			t.Errorf("workers=%d: post-mutation probe report differs from cold analyzer", workers)
		}
	}
}

// TestSessionProbeReplayUnderMutations fuzzes the probe replay path:
// random evict/corrupt/deploy mutations between rounds, with every
// round's report pinned byte-identical to a cold probe analysis and the
// replay partition always covering the whole fabric.
func TestSessionProbeReplayUnderMutations(t *testing.T) {
	f := faultyFabric(t, 17)
	opts := scout.AnalyzerOptions{UseProbes: true}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	numSwitches := f.Topology().NumSwitches()
	switches := f.Topology().Switches()
	rng := rand.New(rand.NewSource(23))
	prev := sess.Stats()
	for round := 0; round < 8; round++ {
		switch rng.Intn(4) {
		case 0:
			if _, err := f.EvictTCAM(switches[rng.Intn(len(switches))], 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := f.CorruptTCAM(switches[rng.Intn(len(switches))], 1+rng.Intn(2),
				scout.CorruptionField(1+rng.Intn(4))); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Redeploy: heals dirty switches and swaps the deployment
			// pointer, exercising the recompile path of the cache key.
			if err := f.Deploy(); err != nil {
				t.Fatal(err)
			}
		case 3:
			// No mutation: a fully replayed round.
		}
		warm, err := sess.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		st := sess.Stats()
		classified := st.ProbeSwitchesClassified - prev.ProbeSwitchesClassified
		replayed := st.ProbeSwitchesReplayed - prev.ProbeSwitchesReplayed
		if classified+replayed != numSwitches {
			t.Fatalf("round %d: classified %d + replayed %d != %d switches",
				round, classified, replayed, numSwitches)
		}
		prev = st
		cold, err := scout.NewAnalyzer(opts).Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm), marshalReport(t, cold)) {
			t.Fatalf("round %d: warm probe report differs from cold analyzer", round)
		}
	}
}

// TestSessionProbeRejectsSnapshotEntryPoints pins the probe-mode driving
// contract: the entry points that consume collected TCAM snapshots have
// nothing to probe and must refuse.
func TestSessionProbeRejectsSnapshotEntryPoints(t *testing.T) {
	f := faultyFabric(t, 3)
	sess, err := scout.NewSession(f, scout.AnalyzerOptions{UseProbes: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AnalyzeEpoch(scout.NewCollector(f, 0).Snapshot()); err == nil {
		t.Error("AnalyzeEpoch must refuse in probe mode")
	}
	if _, err := sess.ApplyEvents(scout.EventBatch{}); err == nil {
		t.Error("ApplyEvents must refuse in probe mode")
	}
	if _, err := sess.AnalyzeState(scout.State{Deployment: f.Deployment()}); err == nil {
		t.Error("AnalyzeState must refuse in probe mode")
	}
}

// TestSessionRequiresDeploy mirrors the analyzer's undeployed-fabric
// error on both session entry points.
func TestSessionRequiresDeploy(t *testing.T) {
	pol, topo, err := scout.GenerateWorkload(scout.TestbedWorkloadSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err == nil {
		t.Error("Analyze before Deploy must fail")
	}
	if _, err := sess.AnalyzeEpoch(scout.NewCollector(f, 0).Snapshot()); err == nil {
		t.Error("AnalyzeEpoch before Deploy must fail")
	}
	if _, err := sess.AnalyzeState(scout.State{}); err == nil {
		t.Error("AnalyzeState without deployment must fail")
	}
}

// TestSessionFoldSharing pins the semantics-cache contract end to end: a
// clean fabric's cold session run resolves every whole-switch fold —
// both the logical side and the (semantically identical) TCAM side —
// from the base's frozen roots, so not a single fold builds privately;
// after one switch drifts, exactly its one drifted TCAM list folds into
// a worker delta.
func TestSessionFoldSharing(t *testing.T) {
	pol, topo, err := scout.GenerateWorkload(scout.TestbedWorkloadSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.BaseSemantics == 0 {
		t.Fatalf("warmup froze no semantics roots: %+v", st)
	}
	if st.FoldMisses != 0 {
		t.Errorf("clean cold run built %d folds privately, want 0 (all frozen in base)", st.FoldMisses)
	}
	if st.FoldHits == 0 {
		t.Error("clean cold run never hit a frozen semantics root")
	}

	sw := f.Topology().Switches()[0]
	removeOneRule(t, f, sw)
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	st2 := sess.Stats()
	if got := st2.Checked - st.Checked; got != 1 {
		t.Fatalf("warm run re-checked %d switches, want 1", got)
	}
	if got := st2.FoldMisses - st.FoldMisses; got != 1 {
		t.Errorf("drifted switch caused %d private folds, want exactly 1 (its TCAM side)", got)
	}
	if st2.FoldHits <= st.FoldHits {
		t.Error("drifted switch's logical side must still hit the frozen root")
	}
}

// TestSessionDedupReplays drives a session over a state with byte-equal
// duplicate switches: the dirty-set dedup must check one representative
// per group, replay the rest (counted in DedupReplays), and stay
// byte-identical to a cold analyzer on the same state; a second run
// replays everything from the per-switch cache without re-grouping.
func TestSessionDedupReplays(t *testing.T) {
	f := faultyFabric(t, 7)
	st, clones := dupState(t, f)
	sess, err := scout.NewSession(f)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sess.AnalyzeState(st)
	if err != nil {
		t.Fatal(err)
	}
	stats := sess.Stats()
	if stats.DedupReplays < clones {
		t.Errorf("DedupReplays = %d, want at least the %d clones", stats.DedupReplays, clones)
	}
	if stats.DedupGroups == 0 {
		t.Error("duplicate switches must form dedup groups")
	}
	// Checked counts cache misses (all switches on first sight); the
	// switches that actually ran a BDD check are Checked minus the
	// group replays.
	if got := stats.Checked - stats.DedupReplays; got > len(warm.Switches)-clones {
		t.Errorf("session ran %d checks for %d switches with %d clones", got, len(warm.Switches), clones)
	}

	cold, err := scout.NewAnalyzer().AnalyzeState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, warm), marshalReport(t, cold)) {
		t.Error("deduped session report differs from cold analyzer")
	}

	// Unchanged state: everything replays from the per-switch cache, no
	// new dedup work.
	if _, err := sess.AnalyzeState(st); err != nil {
		t.Fatal(err)
	}
	again := sess.Stats()
	if again.Checked != stats.Checked {
		t.Errorf("second run re-checked %d switches", again.Checked-stats.Checked)
	}
	if again.DedupReplays != stats.DedupReplays {
		t.Errorf("second run grew DedupReplays by %d", again.DedupReplays-stats.DedupReplays)
	}
}

// TestSessionNodeBudgetCompaction pins the budget → delta-GC policy: a
// session whose worker checkers outgrow a (deliberately tiny) node
// budget compacts them — keeping warm memo state — rather than always
// resetting, and its reports stay byte-identical to cold analyses
// throughout.
func TestSessionNodeBudgetCompaction(t *testing.T) {
	f := faultyFabric(t, 9)
	opts := scout.AnalyzerOptions{Workers: 1, SessionNodeBudget: 256}
	sess, err := scout.NewSession(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	collector := scout.NewCollector(f, 8)
	switches := f.Topology().Switches()

	for round := 0; round < 6; round++ {
		// Dirty a different switch each round so re-checks keep adding
		// novel delta nodes to the persistent checker.
		removeOneRule(t, f, switches[round%len(switches)])
		e := collector.Snapshot()
		warm, err := sess.AnalyzeEpoch(e)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := scout.NewAnalyzer(opts).AnalyzeState(stateFromEpoch(f, e))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, warm), marshalReport(t, cold)) {
			t.Fatalf("round %d: warm report differs from cold analyzer under compaction", round)
		}
	}

	st := sess.Stats()
	if st.CheckerCompactions == 0 {
		t.Fatalf("no compactions under a 256-node budget: %+v", st)
	}
	if st.CompactRetained+st.CompactDropped == 0 {
		t.Fatalf("compactions reported no node accounting: %+v", st)
	}

	// A generous budget must trigger neither compaction nor reset.
	f2 := faultyFabric(t, 9)
	sess2, err := scout.NewSession(f2, scout.AnalyzerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2 := scout.NewCollector(f2, 8)
	for round := 0; round < 3; round++ {
		removeOneRule(t, f2, switches[round%len(switches)])
		if _, err := sess2.AnalyzeEpoch(c2.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess2.Stats(); st.CheckerCompactions != 0 || st.CheckerResets != 0 {
		t.Fatalf("default budget intervened on a small fabric: %+v", st)
	}
}
