package scout_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"scout"
)

// TestFabricEmitsEvents pins the simulator's monitoring-plane role:
// every dataplane mutation — policy pushes, link transitions, and the
// silent faults a real event stream would miss — appends a switch-scoped
// event to the fabric's stream.
func TestFabricEmitsEvents(t *testing.T) {
	pol, topo, err := scout.GenerateWorkload(scout.TestbedWorkloadSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scout.NewFabric(pol, topo, scout.FabricOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(); err != nil {
		t.Fatal(err)
	}
	if f.EventLog().Len() == 0 {
		t.Fatal("deploy emitted no events")
	}
	sw := topo.Switches()[0]
	cursor := f.EventLog().TailCursor()

	expect := func(op string, kind scout.EventKind, wantSwitch scout.ObjectID) {
		t.Helper()
		evs := cursor.Drain()
		if len(evs) == 0 {
			t.Fatalf("%s emitted no events", op)
		}
		found := false
		for _, ev := range evs {
			if ev.Kind == kind && ev.Switch == wantSwitch {
				found = true
			}
			if ev.Seq <= 0 {
				t.Fatalf("%s: event without sequence number: %+v", op, ev)
			}
		}
		if !found {
			t.Fatalf("%s: no %v event for switch %d in %+v", op, kind, wantSwitch, evs)
		}
	}

	if err := f.Disconnect(sw); err != nil {
		t.Fatal(err)
	}
	expect("Disconnect", scout.EventLink, sw)
	if err := f.Reconnect(sw); err != nil {
		t.Fatal(err)
	}
	expect("Reconnect", scout.EventLink, sw)
	if _, err := f.EvictTCAM(sw, 1); err != nil {
		t.Fatal(err)
	}
	expect("EvictTCAM", scout.EventTCAMChange, sw)
	if _, err := f.CorruptTCAM(sw, 1, scout.CorruptDstEPG); err != nil {
		t.Fatal(err)
	}
	expect("CorruptTCAM", scout.EventTCAMChange, sw)

	var filterID scout.ObjectID
	for id := range pol.Filters {
		if filterID == 0 || id < filterID {
			filterID = id
		}
	}
	if _, err := f.InjectObjectFault(scout.FilterRef(filterID), 1.0); err != nil {
		t.Fatal(err)
	}
	evs := cursor.Drain()
	if len(evs) == 0 {
		t.Fatal("InjectObjectFault emitted no events")
	}
	for _, ev := range evs {
		if ev.Kind != scout.EventTCAMChange {
			t.Fatalf("InjectObjectFault emitted %v, want tcam-change", ev.Kind)
		}
	}
}

// TestApplyEventsMatchesAnalyzeEpoch is the streaming equivalence
// property: a session fed coalesced event batches (including
// size-limited mid-stream cuts that leave work pending) must, once the
// queue is drained, produce a report byte-identical to a full
// AnalyzeEpoch of the same final state — at every worker count, over a
// randomized fabric-mutation sequence. The final reports must also
// agree across worker counts.
func TestApplyEventsMatchesAnalyzeEpoch(t *testing.T) {
	var finals [][]byte
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		f := faultyFabric(t, 11)
		opts := scout.AnalyzerOptions{Workers: workers}
		streamSess, err := scout.NewSession(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		refSess, err := scout.NewSession(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		collector := scout.NewCollector(f, 4)
		// Tail from here: the baseline full collections below cover the
		// seed faults the cursor skips.
		cursor := f.EventLog().TailCursor()
		// BatchSize 3 forces mid-stream cuts that leave switches pending,
		// so the equivalence must survive partially-applied storms.
		queue := scout.NewEventQueue(scout.EventQueueOptions{Cap: 64, BatchSize: 3})

		compare := func(step int) {
			t.Helper()
			// Drain everything pending, then take a fresh report at the
			// current clock (an empty batch is a pure replay).
			for _, ev := range cursor.Drain() {
				queue.Push(ev)
			}
			for queue.Len() > 0 {
				if _, err := streamSess.ApplyEvents(queue.Cut(f.Now())); err != nil {
					t.Fatalf("step %d: ApplyEvents: %v", step, err)
				}
			}
			got, err := streamSess.ApplyEvents(scout.EventBatch{})
			if err != nil {
				t.Fatalf("step %d: ApplyEvents(empty): %v", step, err)
			}
			want, err := refSess.AnalyzeEpoch(collector.Snapshot())
			if err != nil {
				t.Fatalf("step %d: AnalyzeEpoch: %v", step, err)
			}
			g, w := marshalReport(t, got), marshalReport(t, want)
			if !bytes.Equal(g, w) {
				t.Fatalf("workers=%d step %d: streaming report diverged from full AnalyzeEpoch\nstream: %s\nfull:   %s",
					workers, step, g, w)
			}
		}
		compare(-1) // baseline: both sessions anchor on the same full state

		rng := rand.New(rand.NewSource(23))
		switches := f.Topology().Switches()
		var filters []scout.ObjectID
		for id := range f.Policy().Filters {
			filters = append(filters, id)
		}
		sort.Slice(filters, func(i, j int) bool { return filters[i] < filters[j] })

		for step := 0; step < 12; step++ {
			// Random fabric mutation; every op emits events for the
			// switches it touches.
			switch rng.Intn(3) {
			case 0:
				if _, err := f.EvictTCAM(switches[rng.Intn(len(switches))], 1+rng.Intn(2)); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := f.CorruptTCAM(switches[rng.Intn(len(switches))], 1, scout.CorruptDstEPG); err != nil {
					t.Fatal(err)
				}
			case 2:
				if _, err := f.InjectObjectFault(scout.FilterRef(filters[rng.Intn(len(filters))]), 0.3); err != nil {
					t.Fatal(err)
				}
			}
			// Stream the new events; apply any size-triggered cuts as they
			// come (these may leave switches pending past this step).
			for _, ev := range cursor.Drain() {
				if queue.Push(ev) {
					if _, err := streamSess.ApplyEvents(queue.Cut(f.Now())); err != nil {
						t.Fatal(err)
					}
				}
			}
			if step%4 == 3 {
				compare(step)
			}
		}
		compare(12)

		st := streamSess.Stats()
		if st.EventBatches == 0 || st.EventSwitchesAliased == 0 {
			t.Fatalf("streaming path not engaged: %+v", st)
		}
		if st.EventSwitchesRead >= st.EventBatches*len(switches) {
			t.Fatalf("partial refreshes read every switch: read %d over %d batches of %d switches",
				st.EventSwitchesRead, st.EventBatches, len(switches))
		}
		finals = append(finals, marshalReport(t, mustLastReport(t, streamSess)))
	}
	for i := 1; i < len(finals); i++ {
		if !bytes.Equal(finals[0], finals[i]) {
			t.Fatal("final streaming reports differ across worker counts")
		}
	}
}

// mustLastReport replays the session's current verdicts as a report (an
// empty batch reads nothing).
func mustLastReport(t *testing.T, s *scout.Session) *scout.Report {
	t.Helper()
	rep, err := s.ApplyEvents(scout.EventBatch{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
